// Package client implements the RLive client: the bottom layer of the
// collaborative control plane and the point where the multi-source data
// plane reassembles into a playable stream.
//
// Responsibilities (paper sections in parentheses):
//   - Hybrid startup: pull the full stream from the CDN for fast first
//     frame while concurrently fetching candidates and probing up to three
//     of them per substream (§4.1).
//   - Multi-substream reassembly: per-frame packet assembly, merging local
//     frame chains into the global chain, ordered playout (§5.1–5.2).
//   - QoE-driven loss recovery: deadline-aware action selection among BE
//     packet retries, dedicated frame fetches, substream switchback, and
//     full-stream fallback (§5.3, §7.4).
//   - Real-time switching: RTT-based publisher re-selection and handling of
//     edge advisers' proactive suggestions (§4.2).
package client

import (
	"time"

	"repro/internal/chain"
	"repro/internal/ctrlplane"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Mode selects the delivery strategy (RLive vs the baselines the paper
// compares against).
type Mode uint8

const (
	// ModeRLive is full multi-source multi-substream delivery.
	ModeRLive Mode = iota
	// ModeSingleSource is the strawman (§2.2): the whole stream relayed
	// through one best-effort node (K=1).
	ModeSingleSource
	// ModeCDNOnly pulls the full stream from dedicated nodes only.
	ModeCDNOnly
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeRLive:
		return "rlive"
	case ModeSingleSource:
		return "single-source"
	default:
		return "cdn-only"
	}
}

// Config parameterizes a client session.
type Config struct {
	Stream media.StreamID
	// K is the substream count (1 for single-source).
	K int
	// FrameInterval is the stream's frame spacing (for deadlines and the
	// playout clock).
	FrameInterval time.Duration
	// CDN and Scheduler are the dedicated node and global scheduler
	// addresses.
	CDN       simnet.Addr
	Scheduler simnet.Addr
	Info      scheduler.ClientInfo
	Mode      Mode

	// ProbeCount bounds startup probing (paper: 3; more gives <1% gain).
	ProbeCount int
	// ProbeTimeout is how long to wait for probe responses before
	// reporting failures and refetching candidates.
	ProbeTimeout time.Duration
	// TChange is the switching cost margin t_change in the rule
	// RTT_cur > min_i(RTT_i + t_change).
	TChange time.Duration
	// SwitchCheckEvery is the client-side control cadence.
	SwitchCheckEvery time.Duration
	// CandidateRefreshEvery re-requests scheduler recommendations.
	CandidateRefreshEvery time.Duration
	// StartupBufferMs is the contiguous buffer needed before playout
	// starts.
	StartupBufferMs float64
	// FallbackThresholdMs is the buffer level enabling full fallback
	// (§7.4, production 400 ms).
	FallbackThresholdMs float64
	// RLiveAfter delays the CDN→multi-source transition (the deployment
	// gates on stream popularity and ≥30 s viewing time; simulations use
	// a shorter gate).
	RLiveAfter time.Duration
	// RecoveryCheckEvery is the recovery-engine cadence.
	RecoveryCheckEvery time.Duration
	// DeadPublisherAfter declares a silent publisher dead.
	DeadPublisherAfter time.Duration
	// MaxStallBeforeSkip caps a stall: live content older than this is
	// abandoned and the playhead jumps to the next playable frame
	// (counted as lost frames). Default 3 s.
	MaxStallBeforeSkip time.Duration
	// MaxLiveLagMs bounds playback latency: when accumulated stalls
	// leave the playhead more than this far behind the ready buffer,
	// the player chases the live edge by dropping frames down to the
	// startup buffer level. Default 3000.
	MaxLiveLagMs float64
	// Redundancy subscribes each substream to this many publishers
	// (1 = redundancy-free RLive; 2 = the duplicate-transmission
	// baseline of prior work, for the abl-redundant ablation).
	Redundancy int
	// Recovery parameterizes the loss engine.
	Recovery recovery.Costs
	// CanConnect models NAT traversal toward an edge node; nil means
	// always reachable. Probe and subscribe sends to unreachable nodes
	// are silently dropped (the traversal fails; the client only
	// observes the missing response).
	CanConnect func(simnet.Addr) bool
	// LKG, when set, is the client's last-known-good snapshot cache:
	// candidate requests are answered locally from the newest pushed
	// snapshot instead of a round trip to the scheduler, so allocation
	// keeps working through indefinite scheduler loss. The cache is fed
	// by snapshot pushes relayed from subscribed edges and by direct
	// requests to the region shard.
	LKG *ctrlplane.LKG
	// CentralSeq, when nonzero, disables trust in packet-embedded chains
	// and polls a centralized sequencing service at this address instead
	// (the pre-RLive design evaluated in Table 3).
	CentralSeq simnet.Addr
	// SeqPollEvery is the central-sequencing poll cadence.
	SeqPollEvery time.Duration

	// Variants, when set, enables ABR: it lists the variant stream IDs
	// of the same content from lowest to highest bitrate; Stream must
	// appear in the list (the starting rung). Switching variants tears
	// down the data plane and rebuilds it on the new stream ID — the
	// variant manifests are separate streams end to end, as in
	// production HLS/FLV ladders.
	Variants []media.StreamID
	// ABRCheckEvery is the adaptation cadence (default 2 s).
	ABRCheckEvery time.Duration
	// ABRLowWaterMs triggers a downgrade (default 450). A live buffer
	// cannot grow past the live edge, so upgrades key off stall-free
	// time instead of a high-water mark.
	ABRLowWaterMs float64
	// ABRUpAfterStable upgrades one rung after this much stall-free,
	// healthy-buffer playback (default 8 s).
	ABRUpAfterStable time.Duration
	// ABRMinHold is the minimum time between variant switches.
	ABRMinHold time.Duration
}

func (c *Config) setDefaults() {
	if c.K == 0 {
		c.K = 4
	}
	if c.FrameInterval == 0 {
		c.FrameInterval = time.Second / 30
	}
	if c.ProbeCount == 0 {
		c.ProbeCount = 3
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = time.Second
	}
	if c.TChange == 0 {
		c.TChange = 150 * time.Millisecond
	}
	if c.SwitchCheckEvery == 0 {
		c.SwitchCheckEvery = 2 * time.Second
	}
	if c.CandidateRefreshEvery == 0 {
		c.CandidateRefreshEvery = 10 * time.Second
	}
	if c.StartupBufferMs == 0 {
		c.StartupBufferMs = 600
	}
	if c.FallbackThresholdMs == 0 {
		c.FallbackThresholdMs = 400
	}
	if c.RLiveAfter == 0 {
		c.RLiveAfter = 2 * time.Second
	}
	if c.RecoveryCheckEvery == 0 {
		c.RecoveryCheckEvery = 100 * time.Millisecond
	}
	if c.DeadPublisherAfter == 0 {
		c.DeadPublisherAfter = 2 * time.Second
	}
	if c.MaxStallBeforeSkip == 0 {
		c.MaxStallBeforeSkip = 3 * time.Second
	}
	if c.MaxLiveLagMs == 0 {
		c.MaxLiveLagMs = 3000
	}
	if c.Redundancy == 0 {
		c.Redundancy = 1
	}
	if c.Recovery == (recovery.Costs{}) {
		c.Recovery = recovery.DefaultCosts()
	}
	if c.SeqPollEvery == 0 {
		c.SeqPollEvery = 200 * time.Millisecond
	}
	if c.ABRCheckEvery == 0 {
		c.ABRCheckEvery = 2 * time.Second
	}
	if c.ABRLowWaterMs == 0 {
		c.ABRLowWaterMs = 450
	}
	if c.ABRUpAfterStable == 0 {
		c.ABRUpAfterStable = 10 * time.Second
	}
	if c.ABRMinHold == 0 {
		c.ABRMinHold = 6 * time.Second
	}
	if c.Mode == ModeSingleSource {
		c.K = 1
		// The strawman (§2.2) predates RLive's QoE-driven fallback: it
		// keeps pulling through its single relay and only re-maps when
		// the relay dies — exactly why it degraded QoE. Negative
		// disables the buffer-threshold fallback.
		c.FallbackThresholdMs = -1
	}
}

// frameAsm assembles one frame from packets.
type frameAsm struct {
	header    media.Header
	haveHdr   bool
	count     uint16
	have      []bool
	got       int
	complete  bool
	linked    bool
	played    bool
	generated int64
	// retx bookkeeping for the recovery state.
	retries     int
	retxPending bool
	lastRetx    simnet.Time
	nextSeq     uint16 // fast-retransmit cursor
	fastRetxAt  simnet.Time
	// beUnavailable marks frames the publisher NACKed: only dedicated
	// recovery can complete them.
	beUnavailable bool
	// viaCDN marks frames completed by a dedicated-node delivery: the
	// CDN path is an ordered stream, so such frames are self-linkable
	// even in the centralized-sequencing baseline.
	viaCDN bool
}

func (a *frameAsm) missing() []uint16 {
	return a.missingInto(nil)
}

// missingInto appends the missing packet seqs to dst — the allocation-free
// variant for callers holding a reusable buffer.
func (a *frameAsm) missingInto(dst []uint16) []uint16 {
	for s := uint16(0); s < a.count; s++ {
		if !a.have[s] {
			dst = append(dst, s)
		}
	}
	return dst
}

// sizeHave (re)sizes the assembly's packet bitmap to n cleared slots,
// reusing prior capacity (assemblies are pooled).
func (a *frameAsm) sizeHave(n int) {
	if cap(a.have) >= n {
		a.have = a.have[:n]
		for i := range a.have {
			a.have[i] = false
		}
	} else {
		a.have = make([]bool, n)
	}
}

// substreamState is the per-substream delivery state.
type substreamState struct {
	ss         media.SubstreamID
	publishers []simnet.Addr // active publishers (len == cfg.Redundancy when healthy)
	candidates []scheduler.Candidate
	lastData   simnet.Time
	// switchedToCDN marks a substream pulled directly from dedicated
	// nodes after recovery action a=2.
	switchedToCDN bool
	switchbackAt  simnet.Time
	consecLost    int
	expected      uint64 // packets expected (for loss estimation)
	received      uint64
}

// Client is one viewing session.
type Client struct {
	Addr simnet.Addr
	cfg  Config

	sim *simnet.Sim
	net *simnet.Network
	rng *stats.RNG

	// stream is the stream currently consumed; with ABR enabled it moves
	// across the variant ladder.
	stream media.StreamID
	rung   int

	part media.Partitioner
	subs []*substreamState

	frames map[uint64]*frameAsm
	gchain *chain.Global
	ownGen struct {
		prev1, prev2 media.Header
		have         int
		lastDts      uint64
		started      bool
	}

	// Playback state.
	started     bool
	stalled     bool
	playhead    uint64 // dts of the next frame to play
	playheadSet bool
	fullCDN     bool // currently subscribed to the CDN full stream
	rliveActive bool // multi-source delivery engaged
	startedAt   simnet.Time
	sessionAt   simnet.Time

	// Hot-path recycling and scratch: asmFree pools frame assemblies,
	// retxPool/reqPool pool the recovery request messages, and the
	// scratch slices/maps below back recoveryTick and the fast-retx path
	// so the steady state allocates nothing.
	asmFree     []*frameAsm
	retxPool    transport.RetxReqPool
	reqPool     transport.FrameReqPool
	missScratch []uint16
	entScratch  []chain.Entry
	listScratch []recovery.FrameState
	asmScratch  []*frameAsm
	consecMap   map[media.SubstreamID]int
	runMap      map[media.SubstreamID]int
	switchedMap map[media.SubstreamID]bool

	// Recovery.
	engine       *recovery.Engine
	dedicatedEDF *stats.EDF
	frameReqAt   map[uint64]simnet.Time
	pktRetxSucc  uint64
	pktRetxTried uint64
	// Per-path retransmission latency instrumentation (Fig 3).
	beRetxAt   map[uint64]simnet.Time
	BERetxLat  *stats.Sample // best-effort retx request → first retx packet (ms)
	DedRetxLat *stats.Sample // dedicated frame request → recovered frame (ms)

	// Control.
	nodeRTT    map[simnet.Addr]*stats.EWMA
	probeSent  map[uint32]probeCtx
	probeNonce uint32
	pendingSub map[media.SubstreamID]bool // probe round outstanding
	// badNodes is the client's LOCAL blacklist (§8.2): nodes whose
	// probes went unanswered (usually NAT-unreachable from here — a
	// per-path property the global scheduler cannot know) are skipped
	// for a cooldown so candidate rounds move down the list.
	badNodes map[simnet.Addr]simnet.Time
	// Probe outcome counters: unanswered probes mean the recommended
	// node was invalid — NAT-unreachable, offline, or at quota (Fig 12b).
	ProbesSent    uint64
	ProbeAnswers  uint64
	ProbeRefusals uint64
	// DupBytes counts payload bytes received for frames (or packets)
	// already held — the cost of deliberate delivery overlap (§8.2).
	DupBytes uint64

	// QoE accounting.
	QoE    *metrics.SessionQoE
	Energy *metrics.Energy

	// Counters for experiments.
	FastRetx        uint64
	TimeoutRetx     uint64
	DedicatedFetch  uint64
	SubstreamSwitch uint64
	FullFallbacks   uint64
	EdgeSwitches    uint64
	SuggestionsRecv uint64
	GapRepairs      uint64
	// RetxNacks counts publisher "cannot serve" responses that forced
	// escalation to dedicated-CDN recovery.
	RetxNacks uint64
	ABRUp     uint64
	ABRDown   uint64
	// LKGServes counts allocation queries answered locally from the
	// last-known-good cache; AllocStalls counts queries that found the
	// cache enabled but empty and had to fall back to the network — the
	// quantity the lkg-autonomy invariant asserts stays at zero.
	LKGServes   uint64
	AllocStalls uint64

	// tr records frame-lifecycle events from the client's own loops;
	// chainTr is the buffer handed to the global chain (re-attached on ABR
	// variant switches). Both nil when tracing is off.
	tr      *trace.Buf
	chainTr *trace.Buf

	// Telemetry instruments, shared fleet-wide by name (nil when off).
	// Increments happen at the exact sites that bump the corresponding
	// QoE/experiment counters, so scraped totals reconcile with
	// SessionQoE aggregates.
	tmPlayed      *telemetry.Counter
	tmLost        *telemetry.Counter
	tmStallOnsets *telemetry.Counter
	tmStallNs     *telemetry.Counter
	tmProbeRTT    *telemetry.Histogram
	tmBuffer      *telemetry.Histogram
	tmSwitchRTT   *telemetry.Counter
	tmSwitchCost  *telemetry.Counter
	tmSwitchQoS   *telemetry.Counter
	tmRecRetryBE  *telemetry.Counter
	tmRecFetch    *telemetry.Counter
	tmRecSwitchSS *telemetry.Counter
	tmRecFallback *telemetry.Counter
	tmAllocStall  *telemetry.Counter

	lastVariantSwitch simnet.Time
	lastStallAt       simnet.Time
	stallOnsetAt      simnet.Time
	handoverAt        simnet.Time
	coveredSince      simnet.Time
	belowSince        simnet.Time
	fallbackAt        simnet.Time
	stallMsOnCDN      float64
	stallsAtLastABR   float64

	stopped bool
}

type probeCtx struct {
	at   simnet.Time
	node simnet.Addr
	ss   media.SubstreamID
}

// New returns a client session. Register c.Handle as the simnet handler for
// addr, then call Start.
func New(addr simnet.Addr, cfg Config, sim *simnet.Sim, net *simnet.Network, rng *stats.RNG) *Client {
	cfg.setDefaults()
	c := &Client{
		Addr:         addr,
		cfg:          cfg,
		sim:          sim,
		net:          net,
		rng:          rng,
		stream:       cfg.Stream,
		part:         media.Partitioner{K: cfg.K},
		frames:       make(map[uint64]*frameAsm),
		gchain:       chain.NewGlobal(0),
		engine:       recovery.NewEngine(cfg.Recovery),
		dedicatedEDF: stats.NewEDF(256),
		frameReqAt:   make(map[uint64]simnet.Time),
		beRetxAt:     make(map[uint64]simnet.Time),
		BERetxLat:    stats.NewSample(64),
		DedRetxLat:   stats.NewSample(64),
		nodeRTT:      make(map[simnet.Addr]*stats.EWMA),
		probeSent:    make(map[uint32]probeCtx),
		pendingSub:   make(map[media.SubstreamID]bool),
		badNodes:     make(map[simnet.Addr]simnet.Time),
		QoE:          metrics.NewSessionQoE(),
		Energy:       &metrics.Energy{},
	}
	for i := 0; i < cfg.K; i++ {
		c.subs = append(c.subs, &substreamState{ss: media.SubstreamID(i)})
	}
	return c
}

// SetTrace attaches this session's frame-lifecycle buffers to a per-run
// trace (nil detaches and restores the zero-cost path). Call before Start.
func (c *Client) SetTrace(run *trace.Run) {
	if run == nil {
		c.tr, c.chainTr = nil, nil
		c.gchain.SetTrace(nil)
		c.engine.Trace = nil
		return
	}
	now := func() int64 { return int64(c.sim.Now()) }
	c.tr = run.Buffer(trace.CompClient, uint32(c.Addr), now)
	c.chainTr = run.Buffer(trace.CompChain, uint32(c.Addr), now)
	c.gchain.SetTrace(c.chainTr)
	c.engine.Trace = run.Buffer(trace.CompRecovery, uint32(c.Addr), now)
}

// SetTelemetry registers this session's instruments on reg. Registration is
// idempotent by name, so every client shares the same fleet-wide instruments
// and scrapes aggregate across sessions. Counter increments sit at the exact
// sites that bump the matching SessionQoE/experiment counters, keeping
// scraped totals exactly reconcilable. Nil reg keeps every hook free. Call
// before Start.
func (c *Client) SetTelemetry(reg *telemetry.Registry) {
	c.tmPlayed = reg.Counter("client.frames_played")
	c.tmLost = reg.Counter("client.frames_lost")
	c.tmStallOnsets = reg.Counter("client.stall_onsets")
	c.tmStallNs = reg.Counter("client.stall_ns")
	c.tmProbeRTT = reg.Histogram("client.probe_rtt_ms",
		[]float64{5, 10, 20, 40, 80, 160, 320, 640})
	c.tmBuffer = reg.Histogram("client.buffer_ms",
		[]float64{100, 200, 400, 600, 800, 1200, 2000, 3000})
	c.tmSwitchRTT = reg.Counter("client.switches.rtt")
	c.tmSwitchCost = reg.Counter("client.switches.cost")
	c.tmSwitchQoS = reg.Counter("client.switches.qos")
	c.tmRecRetryBE = reg.Counter("client.recovery.retry_be")
	c.tmRecFetch = reg.Counter("client.recovery.fetch_dedicated")
	c.tmRecSwitchSS = reg.Counter("client.recovery.switch_substream")
	c.tmRecFallback = reg.Counter("client.recovery.full_fallback")
	c.tmAllocStall = reg.Counter("ctrl.alloc_stall")
}

// PendingChains returns the number of parked chains awaiting a merge — the
// per-session contribution to the fleet-wide chain.pending gauge.
func (c *Client) PendingChains() int { return c.gchain.PendingMismatches() }

// Config returns the effective configuration.
func (c *Client) Config() Config { return c.cfg }

// RLiveActive reports whether multi-source delivery is engaged.
func (c *Client) RLiveActive() bool { return c.rliveActive }

// Start begins the session: parallel CDN pull + candidate fetching (§4.1),
// then the periodic playout, recovery, and control loops.
func (c *Client) Start() {
	c.sessionAt = c.sim.Now()
	// Task 1: fill the initial playout buffer from the CDN.
	c.subscribeFullCDN()
	// Task 2 (concurrent): identify best-effort nodes, unless CDN-only.
	if c.cfg.Mode != ModeCDNOnly {
		c.sim.After(c.cfg.RLiveAfter, c.engageRLive)
	}
	// Playout clock.
	c.sim.Every(c.cfg.FrameInterval, func() bool {
		if c.stopped {
			return false
		}
		c.playTick()
		return true
	})
	// Startup watchdog: the control channel is best-effort, so the
	// initial CDN subscribe can be lost; re-send it (idempotent) until
	// data flows.
	c.sim.Every(500*time.Millisecond, func() bool {
		if c.stopped || c.started {
			return false
		}
		if c.fullCDN && len(c.frames) == 0 {
			c.sendTo(c.cfg.CDN, &transport.CDNSubscribeReq{Stream: c.stream, FullStream: true})
		}
		return true
	})
	// Recovery engine.
	c.sim.Every(c.cfg.RecoveryCheckEvery, func() bool {
		if c.stopped {
			return false
		}
		c.recoveryTick()
		return true
	})
	// Client-side switching control + QoS reports.
	c.sim.Every(c.cfg.SwitchCheckEvery, func() bool {
		if c.stopped {
			return false
		}
		c.switchTick()
		return true
	})
	if c.cfg.Mode != ModeCDNOnly {
		c.sim.Every(c.cfg.CandidateRefreshEvery, func() bool {
			if c.stopped {
				return false
			}
			c.refreshCandidates()
			return true
		})
	}
	if c.cfg.CentralSeq != 0 {
		c.sim.Every(c.cfg.SeqPollEvery, func() bool {
			if c.stopped {
				return false
			}
			c.pollCentralSeq()
			return true
		})
	}
	if c.cfg.LKG != nil && c.cfg.Mode != ModeCDNOnly {
		// Prime the last-known-good cache from the region shard, then
		// self-refresh whenever the edge relay tier has gone quiet. The
		// refresh keeps retrying through a scheduler outage — harmless
		// (dropped at the dead shard) and the first responder after
		// recovery repopulates every cache.
		c.sendTo(c.cfg.Scheduler, &ctrlplane.SnapshotReq{})
		c.sim.Every(2500*time.Millisecond, func() bool {
			if c.stopped {
				return false
			}
			if !c.cfg.LKG.Has() || c.cfg.LKG.AgeMs() > 10000 {
				c.sendTo(c.cfg.Scheduler, &ctrlplane.SnapshotReq{})
			}
			return true
		})
	}
	if len(c.cfg.Variants) > 1 {
		c.abrStart()
	}
}

// Stop ends the session (viewer leaves).
func (c *Client) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	for _, st := range c.subs {
		for _, pub := range st.publishers {
			c.sendTo(pub, &transport.UnsubscribeReq{Key: c.key(st.ss)})
		}
		if st.switchedToCDN {
			c.sendTo(c.cfg.CDN, &transport.CDNUnsubscribeReq{Stream: c.stream, Substream: st.ss})
		}
	}
	if c.fullCDN {
		c.sendTo(c.cfg.CDN, &transport.CDNUnsubscribeReq{Stream: c.stream, FullStream: true})
	}
}

// Stopped reports whether the session ended.
func (c *Client) Stopped() bool { return c.stopped }

// Trim releases oversized pool and scratch capacity; call at quiescent
// points (core.System.Run does, between experiment phases).
func (c *Client) Trim() {
	c.retxPool.Trim()
	c.reqPool.Trim()
	if cap(c.asmFree) > 4096 {
		c.asmFree = nil
	}
	if cap(c.entScratch) > 4096 {
		c.entScratch = nil
	}
	if cap(c.listScratch) > 4096 {
		c.listScratch = nil
	}
	if cap(c.asmScratch) > 4096 {
		c.asmScratch = nil
	}
	c.gchain.Trim()
}

func (c *Client) key(ss media.SubstreamID) scheduler.SubstreamKey {
	return scheduler.SubstreamKey{Stream: c.stream, Substream: ss}
}

// sendTo transmits a message, applying the NAT reachability model for
// edge-node destinations.
func (c *Client) sendTo(to simnet.Addr, msg any) {
	if c.cfg.CanConnect != nil && to != c.cfg.CDN && to != c.cfg.Scheduler && to != c.cfg.CentralSeq {
		if !c.cfg.CanConnect(to) {
			// Traversal failure: the message never arrives, so the
			// Send reference a pooled message carries dies here.
			if p, ok := msg.(simnet.Poolable); ok {
				p.PoolRelease()
			}
			return
		}
	}
	c.net.Send(c.Addr, to, transport.WireSize(msg), msg)
}

func (c *Client) subscribeFullCDN() {
	if c.fullCDN {
		return
	}
	c.fullCDN = true
	c.sendTo(c.cfg.CDN, &transport.CDNSubscribeReq{Stream: c.stream, FullStream: true})
}

func (c *Client) unsubscribeFullCDN() {
	if !c.fullCDN {
		return
	}
	c.fullCDN = false
	c.sendTo(c.cfg.CDN, &transport.CDNUnsubscribeReq{Stream: c.stream, FullStream: true})
}

// engageRLive starts the multi-source transition: fetch candidates for each
// substream and begin probing.
func (c *Client) engageRLive() {
	if c.stopped || c.cfg.Mode == ModeCDNOnly {
		return
	}
	c.rliveActive = true
	c.refreshCandidates()
}

// refreshCandidates obtains recommendations for every substream lacking a
// healthy publisher set.
func (c *Client) refreshCandidates() {
	if !c.rliveActive {
		return
	}
	for _, st := range c.subs {
		if st.switchedToCDN {
			continue
		}
		c.requestCandidates(st.ss)
	}
}

// requestCandidates obtains scheduler recommendations for one substream.
// With a last-known-good cache holding a snapshot, the query is answered
// locally — the control plane stays out of the request path, so
// allocation keeps working through indefinite scheduler loss. Without a
// cache (or before the first snapshot lands) it is a CandidateReq round
// trip.
func (c *Client) requestCandidates(ss media.SubstreamID) {
	if c.cfg.LKG != nil {
		if c.cfg.LKG.Has() {
			now := c.sim.Now()
			cands := c.cfg.LKG.Candidates(c.cfg.Info, 8, func(a simnet.Addr) bool {
				until, bad := c.badNodes[a]
				return bad && now < until
			})
			c.LKGServes++
			c.onCandidates(&transport.CandidateResp{Key: c.key(ss), Candidates: cands})
			return
		}
		c.AllocStalls++
		c.tmAllocStall.Inc()
	}
	c.sendTo(c.cfg.Scheduler, &transport.CandidateReq{Key: c.key(ss), Client: c.cfg.Info})
}

// Handle processes inbound messages.
func (c *Client) Handle(from simnet.Addr, msg any) {
	if c.stopped {
		return
	}
	switch m := msg.(type) {
	case *transport.DataPacket:
		c.onDataPacket(from, m)
	case *transport.CDNFrame:
		c.onCDNFrame(m)
	case *transport.CandidateResp:
		c.onCandidates(m)
	case *transport.ProbeResp:
		c.onProbeResp(from, m)
	case *transport.SwitchSuggestion:
		c.onSuggestion(from, m)
	case *transport.RetxNack:
		c.onRetxNack(m)
	case *transport.SeqUpdate:
		c.onSeqUpdate(m)
	case *ctrlplane.SnapshotPush:
		if c.cfg.LKG != nil {
			c.cfg.LKG.Apply(m.Snap, c.sim.Now())
			c.sendTo(from, &ctrlplane.SnapshotAck{Region: c.cfg.Info.Region, Seq: m.Seq, OK: true})
		}
	}
}

package client

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/scheduler"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// These tests cover the client mechanisms added while hardening the system:
// NACK escalation, local probe blacklisting, live-edge discipline (stall
// skip + latency chasing), and the handover/fallback hysteresis.

func TestRetxNackEscalatesToDedicated(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeRLive})
	h.sim.Run(10 * time.Second)
	pubs := h.client.Publishers(0)
	if len(pubs) == 0 {
		t.Fatal("no publisher")
	}
	before := h.client.DedicatedFetch
	// Fabricate an incomplete frame the publisher cannot have, then NACK.
	dts := uint64(999999)
	h.client.frames[dts] = &frameAsm{count: 4, have: make([]bool, 4)}
	nack := &transport.RetxNack{Key: scheduler.SubstreamKey{Stream: 1, Substream: 0}, Dts: dts}
	h.net.Send(pubs[0], clientAddr, transport.WireSize(nack), nack)
	h.sim.Run(11 * time.Second)
	if h.client.DedicatedFetch <= before {
		t.Fatal("NACK did not trigger a dedicated fetch")
	}
	if !h.client.frames[dts].beUnavailable {
		t.Fatal("NACK did not mark the frame BE-unavailable")
	}
}

func TestLocalBlacklistSkipsUnansweredNodes(t *testing.T) {
	// All candidates are NAT-blocked except one; the client must land on
	// the reachable node after locally blacklisting the silent ones.
	reachable := simnet.Addr(100005)
	h := newHarness(t, harnessOpts{
		mode:     ModeRLive,
		numEdges: 6,
		k:        1,
		canConn:  func(a simnet.Addr) bool { return a == reachable },
	})
	h.sim.Run(25 * time.Second)
	pubs := h.client.Publishers(0)
	if len(pubs) != 1 || pubs[0] != reachable {
		t.Fatalf("publishers = %v, want [%v]", pubs, reachable)
	}
	if len(h.client.badNodes) == 0 {
		t.Fatal("no nodes locally blacklisted despite NAT blocks")
	}
	if h.client.QoE.FramesPlayed < 400 {
		t.Fatalf("frames played = %d", h.client.QoE.FramesPlayed)
	}
}

func TestStallSkipCapsStallDuration(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeCDNOnly, clientCfg: func(c *Config) {
		c.MaxStallBeforeSkip = time.Second
	}})
	h.sim.Run(8 * time.Second)
	// Kill the CDN long enough to exhaust the buffer, then revive it.
	h.net.SetOnline(cdnAddr, false)
	h.sim.Run(12 * time.Second)
	h.net.SetOnline(cdnAddr, true)
	h.sim.Run(25 * time.Second)
	if !h.client.started {
		t.Fatal("never started")
	}
	if h.client.QoE.FramesLost == 0 {
		t.Fatal("no frames abandoned despite a 4s outage and 1s stall cap")
	}
	// Playback must resume after the outage.
	played := h.client.QoE.FramesPlayed
	h.sim.Run(30 * time.Second)
	if h.client.QoE.FramesPlayed <= played {
		t.Fatal("playback did not resume after outage")
	}
}

func TestLatencyChaseBoundsE2E(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeCDNOnly, clientCfg: func(c *Config) {
		c.MaxLiveLagMs = 1500
		c.MaxStallBeforeSkip = time.Hour // isolate the chase path
	}})
	h.sim.Run(5 * time.Second)
	// A 3-second CDN outage builds a large ready backlog when it ends.
	h.net.SetOnline(cdnAddr, false)
	h.sim.Run(8 * time.Second)
	h.net.SetOnline(cdnAddr, true)
	h.sim.Run(30 * time.Second)
	// After recovery, the playhead must have chased: buffer bounded by
	// the configured lag.
	if buf := h.client.BufferMs(); buf > 1700 {
		t.Fatalf("buffer %v ms exceeds the live-lag bound", buf)
	}
	if h.client.QoE.FramesLost == 0 {
		t.Fatal("latency chase never dropped frames")
	}
}

func TestFallbackHysteresisIgnoresTransientDips(t *testing.T) {
	h := newHarness(t, harnessOpts{mode: ModeRLive})
	h.sim.Run(15 * time.Second)
	if h.client.FullFallbacks > 1 {
		t.Fatalf("fallbacks on a clean network: %d", h.client.FullFallbacks)
	}
}

func TestProbeOutcomeCounters(t *testing.T) {
	blocked := map[simnet.Addr]bool{100000: true}
	h := newHarness(t, harnessOpts{
		mode:    ModeRLive,
		canConn: func(a simnet.Addr) bool { return !blocked[a] },
	})
	h.sim.Run(20 * time.Second)
	if h.client.ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
	if h.client.ProbeAnswers > h.client.ProbesSent {
		t.Fatal("more answers than probes")
	}
	if h.client.ProbeAnswers == h.client.ProbesSent && len(blocked) > 0 {
		t.Log("note: blocked node may not have been probed this run")
	}
}

func TestDupBytesCounted(t *testing.T) {
	// During the pre-handover overlap both CDN and edges deliver; the
	// duplicate accounting must observe it.
	h := newHarness(t, harnessOpts{mode: ModeRLive, clientCfg: func(c *Config) {
		c.RLiveAfter = time.Second
	}})
	h.sim.Run(20 * time.Second)
	if h.client.DupBytes == 0 {
		t.Fatal("no duplicate bytes recorded despite delivery overlap")
	}
}

func TestABRStartupDowngrade(t *testing.T) {
	// A viewer whose startup can never complete (CDN offline, no edges
	// reachable) must walk down the ladder instead of waiting forever.
	h := newHarness(t, harnessOpts{
		mode:    ModeRLive,
		canConn: func(simnet.Addr) bool { return false },
		clientCfg: func(c *Config) {
			c.Variants = []media.StreamID{901, 902, 1}
			c.ABRMinHold = 2 * time.Second
		},
	})
	h.net.SetOnline(cdnAddr, false)
	h.sim.Run(20 * time.Second)
	if h.client.ABRDown == 0 {
		t.Fatal("startup ABR never downgraded on a dead path")
	}
	if h.client.Rung() == len(h.client.Config().Variants)-1 {
		t.Fatal("still at top rung")
	}
}

package client

import (
	"repro/internal/chain"
	"repro/internal/media"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transport"
)

// newAsm returns a pooled, zeroed frame assembly.
func (c *Client) newAsm() *frameAsm {
	if k := len(c.asmFree); k > 0 {
		a := c.asmFree[k-1]
		c.asmFree = c.asmFree[:k-1]
		return a
	}
	return &frameAsm{}
}

// releaseAsm recycles an assembly removed from c.frames, keeping its
// packet-bitmap backing array. Callers must not hold other references.
func (c *Client) releaseAsm(a *frameAsm) {
	have := a.have[:0]
	*a = frameAsm{have: have}
	c.asmFree = append(c.asmFree, a)
}

// asm returns (creating if needed) the assembly for a frame.
func (c *Client) asm(dts uint64) *frameAsm {
	a, ok := c.frames[dts]
	if !ok {
		a = c.newAsm()
		c.frames[dts] = a
	}
	return a
}

// onDataPacket ingests one pushed packet from a best-effort publisher.
func (c *Client) onDataPacket(from simnet.Addr, p *transport.DataPacket) {
	ss := p.Key.Substream
	if int(ss) >= len(c.subs) || p.Key.Stream != c.stream {
		return
	}
	st := c.subs[ss]
	st.lastData = c.sim.Now()
	st.received++
	c.Energy.AddCPU(1) // per-packet processing

	a := c.asm(p.Header.Dts)
	if !a.haveHdr {
		a.header = p.Header
		a.haveHdr = true
		a.count = p.Count
		if len(a.have) == 0 {
			a.sizeHave(int(p.Count))
		}
		a.generated = p.GeneratedAt
		st.expected += uint64(p.Count)
		c.gchain.AddHeader(p.Header)
		c.Energy.TrackMem(float64(len(c.frames)) * float64(p.Header.Size))
	}
	if int(p.Seq) < len(a.have) && !a.have[p.Seq] {
		a.have[p.Seq] = true
		a.got++
	} else {
		c.DupBytes += uint64(p.PayloadLen)
	}
	if p.Retransmit {
		c.pktRetxSucc++
		a.retxPending = false
		if at, ok := c.beRetxAt[p.Header.Dts]; ok {
			c.BERetxLat.Add(float64(c.sim.Now()-at) / 1e6)
			delete(c.beRetxAt, p.Header.Dts)
		}
	}

	// Fast retransmission (§5.3 action a=0): an out-of-order packet
	// within the frame indicates loss of the skipped packets; request
	// them immediately instead of waiting for the timeout path.
	if !p.Retransmit && p.Seq > a.nextSeq && !a.complete {
		if a.fastRetxAt == 0 || c.sim.Now()-a.fastRetxAt > c.cfg.RecoveryCheckEvery {
			missing := c.missScratch[:0]
			for s := a.nextSeq; s < p.Seq; s++ {
				if !a.have[s] {
					missing = append(missing, s)
				}
			}
			c.missScratch = missing
			if len(missing) > 0 {
				c.requestRetx(st, p.Header.Dts, missing)
				c.FastRetx++
				a.fastRetxAt = c.sim.Now()
			}
		}
	}
	if p.Seq >= a.nextSeq {
		a.nextSeq = p.Seq + 1
	}

	// Merge the embedded local chain — unless running the centralized
	// sequencing baseline, where order comes from the super node.
	if c.cfg.CentralSeq == 0 && len(p.Chain) > 0 {
		c.gchain.TryMatch(p.Chain)
		c.Energy.AddCPU(float64(len(p.Chain)))
	}

	if !a.complete && a.got == int(a.count) {
		c.onFrameComplete(p.Header.Dts, a)
	}
	c.refreshLinked()
}

// onCDNFrame ingests a full frame from a dedicated node (full-stream
// delivery, substream switchback delivery, or dts-indexed recovery).
func (c *Client) onCDNFrame(m *transport.CDNFrame) {
	if m.Header.Stream != c.stream {
		return
	}
	c.Energy.AddCPU(1)
	if !m.Full {
		// Warm-up header: record it so chain footprints for the first
		// delivered frames are computed with true predecessors.
		a := c.asm(m.Header.Dts)
		if !a.haveHdr {
			a.header = m.Header
			a.haveHdr = true
			a.count = uint16(transport.PacketsForFrame(int(m.Header.Size)))
			if len(a.have) == 0 {
				a.sizeHave(int(a.count))
			}
			a.generated = m.GeneratedAt
			c.gchain.AddHeader(m.Header)
		}
		return
	}
	a := c.asm(m.Header.Dts)
	if !a.haveHdr {
		a.header = m.Header
		a.haveHdr = true
		a.count = uint16(transport.PacketsForFrame(int(m.Header.Size)))
		a.sizeHave(int(a.count))
		a.generated = m.GeneratedAt
		c.gchain.AddHeader(m.Header)
		c.Energy.TrackMem(float64(len(c.frames)) * float64(m.Header.Size))
	}
	if m.Recovered {
		if at, ok := c.frameReqAt[m.Header.Dts]; ok {
			latMs := float64(c.sim.Now()-at) / 1e6
			c.dedicatedEDF.Observe(latMs)
			c.DedRetxLat.Add(latMs)
			delete(c.frameReqAt, m.Header.Dts)
			c.QoE.RetxSucceeded++
		}
	}
	if !a.complete {
		for s := range a.have {
			a.have[s] = true
		}
		a.got = int(a.count)
		a.viaCDN = true
		c.onFrameComplete(m.Header.Dts, a)
	} else {
		c.DupBytes += uint64(m.Header.Size)
	}
	c.refreshLinked()
}

// onFrameComplete marks a frame fully received and tries to advance the
// global chain: first by merging (already done for packet chains), then by
// self-linking — computing the frame's footprint from its own and its
// predecessors' headers, exactly as an edge node would, which closes chain
// gaps whenever the data itself made it through (or came from the CDN,
// which sends no chains).
func (c *Client) onFrameComplete(dts uint64, a *frameAsm) {
	a.complete = true
	if c.tr != nil {
		var via uint64
		if a.viaCDN {
			via = 1
		}
		c.tr.Rec(trace.KFrameComplete, uint32(c.stream), dts, via, uint64(a.retries))
	}
	if st := c.sub(dts); st != nil {
		st.consecLost = 0
	}
	// Self-linking is part of the distributed sequencing design (the
	// client acts as an edge-grade sequencer); the centralized baseline
	// depends on the super node for ordering edge-delivered frames. CDN
	// deliveries arrive over an ordered stream and self-link regardless.
	if c.cfg.CentralSeq == 0 || a.viaCDN {
		c.selfLink(dts, a)
	}
}

// sub returns the substream state owning a dts.
func (c *Client) sub(dts uint64) *substreamState {
	ss := c.part.Assign(dts)
	if int(ss) >= len(c.subs) {
		return nil
	}
	return c.subs[ss]
}

// selfLink seeds an empty global chain with the first complete frame. The
// predecessor headers come from the CDN's warm-up records when available
// (zero headers otherwise, matching a LocalGenerator at true stream start).
func (c *Client) selfLink(dts uint64, a *frameAsm) {
	if _, ok := c.gchain.Terminal(); ok || c.ownGen.started {
		return
	}
	c.ownGen.started = true
	iv := c.intervalMs()
	var prev1, prev2 media.Header
	if dts >= iv {
		prev1, _ = c.headerOf(dts - iv)
	}
	if dts >= 2*iv {
		prev2, _ = c.headerOf(dts - 2*iv)
	}
	fp := chain.New(a.header, prev1, prev2, a.count)
	c.gchain.TryMatch([]chain.Footprint{fp})
	c.ownGen.lastDts = dts
}

// linkConsecutive extends the global chain through complete frames that
// directly follow the terminal in dts order but whose chain copies were
// lost or never sent (CDN deliveries carry no chains). The chain computes
// the footprint itself from its actual tail context (AppendSelf), exactly
// as an edge node would have. It loops so a run of orphaned complete
// frames links in one pass; a non-advancing terminal ends the loop.
func (c *Client) linkConsecutive() {
	iv := c.intervalMs()
	for {
		term, ok := c.gchain.Terminal()
		if !ok {
			return
		}
		next := term.Dts + iv
		a, ok := c.frames[next]
		if !ok || !a.complete || !a.haveHdr {
			return
		}
		// Centralized-sequencing baseline: only CDN-delivered frames
		// (ordered stream) may self-link; edge frames await the super
		// node's ordering.
		if c.cfg.CentralSeq != 0 && !a.viaCDN {
			return
		}
		if !c.gchain.AppendSelf(a.header, a.count) {
			return
		}
		c.Energy.AddCPU(2)
		if t2, ok := c.gchain.Terminal(); !ok || t2.Dts <= term.Dts {
			return // no progress; avoid spinning
		}
	}
}

// headerOf returns the received header for a dts.
func (c *Client) headerOf(dts uint64) (media.Header, bool) {
	a, ok := c.frames[dts]
	if !ok || !a.haveHdr {
		return media.Header{}, false
	}
	return a.header, true
}

// refreshLinked extends the chain through any orphaned consecutive frames,
// then marks assemblies linked per the global chain.
func (c *Client) refreshLinked() {
	c.linkConsecutive()
	for _, fp := range c.gchain.NextLinked() {
		if a, ok := c.frames[fp.Dts]; ok {
			a.linked = true
			if !a.haveHdr {
				// Header arrives with data; CNT from the
				// footprint sizes the assembly so recovery can
				// request it even with zero packets received.
				a.count = fp.CNT
				a.sizeHave(int(fp.CNT))
			}
		} else {
			// A linked frame we have no data for at all: create the
			// assembly from the footprint so recovery sees it.
			a := c.newAsm()
			a.count = fp.CNT
			a.sizeHave(int(fp.CNT))
			a.linked = true
			c.frames[fp.Dts] = a
		}
	}
}

// requestRetx sends a packet retransmission request to the substream's
// publisher (recovery action a=0).
func (c *Client) requestRetx(st *substreamState, dts uint64, missing []uint16) {
	if len(st.publishers) == 0 {
		return
	}
	c.traceAction(0, dts)
	req := c.retxPool.Get()
	req.Key = c.key(st.ss)
	req.Dts = dts
	req.Missing = append(req.Missing[:0], missing...)
	c.sendTo(st.publishers[0], req)
	if _, pending := c.beRetxAt[dts]; !pending {
		c.beRetxAt[dts] = c.sim.Now()
	}
	c.pktRetxTried += uint64(len(missing))
	c.QoE.RetxRequests++
	c.QoE.RetxBytes += float64(len(missing) * transport.PacketPayload)
}

// onRetxNack handles a publisher's "cannot serve" for a retransmission:
// the frame predates the relay's window, so only dedicated recovery works.
func (c *Client) onRetxNack(m *transport.RetxNack) {
	a, ok := c.frames[m.Dts]
	if !ok || a.complete {
		return
	}
	a.beUnavailable = true
	a.retxPending = false
	c.RetxNacks++
	c.fetchDedicated(m.Dts, a)
}

// onSeqUpdate merges a centralized sequencing response (Table 3 baseline):
// the super node's footprint list is just a long local chain.
func (c *Client) onSeqUpdate(m *transport.SeqUpdate) {
	if m.Stream != c.stream || len(m.Chain) == 0 {
		return
	}
	c.gchain.TryMatch(m.Chain)
	c.Energy.AddCPU(float64(len(m.Chain)))
	c.refreshLinked()
}

// pollCentralSeq queries the sequencing super node.
func (c *Client) pollCentralSeq() {
	var since uint64
	if term, ok := c.gchain.Terminal(); ok {
		since = term.Dts
	}
	c.sendTo(c.cfg.CentralSeq, &transport.SeqQuery{Stream: c.stream, SinceDts: since})
}

package client

import (
	"time"

	"repro/internal/media"
	"repro/internal/recovery"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transport"
)

// traceAction records an executed recovery action with the deadline budget
// (ms until the frame's playout slot — dts is in ms) still available when
// the action fired.
func (c *Client) traceAction(action uint64, dts uint64) {
	if c.tr == nil {
		return
	}
	var budget uint64
	if c.playheadSet && dts > c.playhead {
		budget = dts - c.playhead
	}
	c.tr.Rec(trace.KRecoveryAction, uint32(c.stream), dts, action, budget)
}

// recoveryTick builds the retransmission list (incomplete frames ahead of
// the playhead), consults the loss engine, and executes the chosen actions
// (§5.3). It also repairs chain gaps and handles dead publishers' frames by
// inference.
func (c *Client) recoveryTick() {
	if !c.playheadSet {
		return
	}
	c.repairChainGaps()

	now := c.sim.Now()
	iv := c.intervalMs()
	bufMs := c.BufferMs()

	// Fallback threshold guard (§7.4): once playback has started, a
	// buffer below the threshold switches to CDN full-stream delivery.
	// This also covers total starvation (all publishers dead and no new
	// chain entries to recover frame-by-frame).
	// Hysteresis: the buffer must stay below the threshold for a
	// sustained window (transient dips recover via retransmission), and
	// a fresh handover gets a grace period before the guard re-arms.
	handoverGrace := c.handoverAt > 0 && now-c.handoverAt < simnet.Time(5*time.Second)
	if c.started && !c.fullCDN && c.cfg.FallbackThresholdMs > 0 && bufMs < c.cfg.FallbackThresholdMs {
		if c.belowSince == 0 {
			c.belowSince = now
		}
		if !handoverGrace && now-c.belowSince >= simnet.Time(700*time.Millisecond) {
			c.fullFallback()
		}
	} else {
		c.belowSince = 0
	}

	// The recovery horizon is every frame the global chain knows about
	// from the playhead on — including UNLINKED entries, whose footprints
	// carry dts and packet count (CNT) precisely so that fully-lost
	// frames remain recoverable (§5.2).
	entries := c.gchain.AppendEntries(c.entScratch[:0])
	c.entScratch = entries
	if len(entries) == 0 {
		return
	}
	// Scratch-backed working set: the frame-state list, its index-aligned
	// assembly slice (Decide preserves input order, so decisions[i]
	// belongs to asms[i]), and cleared persistent maps for the per-
	// substream burst counters.
	list := c.listScratch[:0]
	asms := c.asmScratch[:0]
	if c.consecMap == nil {
		c.consecMap = make(map[media.SubstreamID]int)
		c.runMap = make(map[media.SubstreamID]int)
	} else {
		clear(c.consecMap)
		clear(c.runMap)
	}
	consec := c.consecMap
	run := c.runMap
	for _, e := range entries {
		dts := e.FP.Dts
		if dts < c.playhead {
			continue
		}
		ss := c.part.Assign(dts)
		a, ok := c.frames[dts]
		if ok && a.complete {
			run[ss] = 0
			continue
		}
		run[ss]++
		if run[ss] > consec[ss] {
			consec[ss] = run[ss]
		}
		if a == nil {
			// Announced by a chain but no data at all: size the
			// assembly from the footprint.
			a = c.newAsm()
			a.count = e.FP.CNT
			a.sizeHave(int(e.FP.CNT))
			c.frames[dts] = a
		}
		// Throttle: one outstanding action per frame per retry RTT.
		if a.retxPending && now-a.lastRetx < simnet.Time(200*time.Millisecond) {
			continue
		}
		size := int(a.header.Size)
		if size == 0 {
			size = int(a.count) * transport.PacketPayload
		}
		missing := int(a.count) - a.got
		deadlineMs := float64(dts-c.playhead) / float64(iv) * float64(c.cfg.FrameInterval.Milliseconds())
		list = append(list, recovery.FrameState{
			Dts:            dts,
			Substream:      ss,
			Type:           a.header.Type,
			Deadline:       time.Duration(deadlineMs) * time.Millisecond,
			SizeBytes:      size,
			MissingPackets: missing,
			PacketBytes:    transport.PacketPayload,
			RetriesUsed:    a.retries,
		})
		asms = append(asms, a)
	}
	c.listScratch, c.asmScratch = list, asms
	if len(list) == 0 {
		return
	}

	st := recovery.Stats{
		PktSuccess:          c.pktSuccessRate(),
		BERetryRTT:          c.beRetryRTT(),
		DedicatedEDF:        c.dedicatedEDF,
		ConsecutiveLost:     consec,
		BufferMs:            bufMs,
		FallbackThresholdMs: c.cfg.FallbackThresholdMs,
	}
	decisions := c.engine.Decide(list, st)
	c.Energy.AddCPU(float64(len(list)))

	if c.switchedMap == nil {
		c.switchedMap = make(map[media.SubstreamID]bool)
	} else {
		clear(c.switchedMap)
	}
	switched := c.switchedMap
	for i := range decisions {
		d := decisions[i]
		a := asms[i]
		switch d.Action {
		case recovery.RetryBestEffort:
			sub := c.subs[d.Frame.Substream]
			if len(sub.publishers) == 0 || sub.switchedToCDN || a.beUnavailable {
				// No best-effort path: degrade to a dedicated fetch.
				c.fetchDedicated(d.Frame.Dts, a)
				continue
			}
			missing := a.missingInto(c.missScratch[:0])
			c.missScratch = missing
			if len(missing) == 0 {
				continue
			}
			c.requestRetx(sub, d.Frame.Dts, missing)
			a.retries++
			a.retxPending = true
			a.lastRetx = now
			c.TimeoutRetx++
			c.tmRecRetryBE.Inc()
		case recovery.FetchDedicated:
			c.fetchDedicated(d.Frame.Dts, a)
			a.retries++
			a.lastRetx = now
		case recovery.SwitchSubstream:
			if !switched[d.Frame.Substream] {
				switched[d.Frame.Substream] = true
				c.switchSubstreamToCDN(d.Frame.Substream)
			}
			// The switch delivers subsequent frames; this one still
			// needs an explicit fetch.
			c.fetchDedicated(d.Frame.Dts, a)
		case recovery.FullFallback:
			c.fullFallback()
			c.fetchDedicated(d.Frame.Dts, a)
		}
	}
}

// fetchDedicated requests one frame from the CDN by dts (action a=1),
// deduplicating outstanding requests.
func (c *Client) fetchDedicated(dts uint64, a *frameAsm) {
	now := c.sim.Now()
	if at, ok := c.frameReqAt[dts]; ok && now-at < simnet.Time(300*time.Millisecond) {
		return
	}
	c.traceAction(1, dts)
	c.frameReqAt[dts] = now
	req := c.reqPool.Get()
	req.Stream = c.stream
	req.Dts = dts
	c.sendTo(c.cfg.CDN, req)
	c.DedicatedFetch++
	c.tmRecFetch.Inc()
	c.QoE.RetxRequests++
	if a != nil {
		size := int(a.header.Size)
		if size == 0 {
			size = int(a.count) * transport.PacketPayload
		}
		c.QoE.RetxBytes += float64(size)
	}
}

// switchSubstreamToCDN repoints one substream to dedicated delivery
// (action a=2).
func (c *Client) switchSubstreamToCDN(ss media.SubstreamID) {
	st := c.subs[ss]
	if st.switchedToCDN {
		return
	}
	c.traceAction(2, c.playhead)
	st.switchedToCDN = true
	st.switchbackAt = c.sim.Now()
	c.SubstreamSwitch++
	c.tmRecSwitchSS.Inc()
	for _, pub := range st.publishers {
		c.sendTo(pub, &transport.UnsubscribeReq{Key: c.key(ss)})
	}
	st.publishers = nil
	c.sendTo(c.cfg.CDN, &transport.CDNSubscribeReq{Stream: c.stream, Substream: ss})
}

// fullFallback pulls the entire stream from the CDN (action a=3). Edge
// subscriptions are dropped; the client retries multi-source after the
// buffer rebuilds (next candidate refresh re-engages).
func (c *Client) fullFallback() {
	if c.fullCDN {
		return
	}
	c.traceAction(3, c.playhead)
	c.FullFallbacks++
	c.tmRecFallback.Inc()
	c.QoE.Fallbacks++
	for _, st := range c.subs {
		for _, pub := range st.publishers {
			c.sendTo(pub, &transport.UnsubscribeReq{Key: c.key(st.ss)})
		}
		st.publishers = nil
		if st.switchedToCDN {
			c.sendTo(c.cfg.CDN, &transport.CDNUnsubscribeReq{Stream: c.stream, Substream: st.ss})
			st.switchedToCDN = false
		}
	}
	c.subscribeFullCDN()
	c.rliveActive = false
	c.belowSince = 0
	c.fallbackAt = c.sim.Now()
	c.stallMsOnCDN = 0
	// Re-engage multi-source after the buffer has had time to rebuild,
	// backing off exponentially with repeated fallbacks so a session
	// that keeps failing on edges settles on the CDN.
	shift := c.FullFallbacks
	if shift > 3 {
		shift = 3
	}
	delay := simnet.Time(5*time.Second) << shift
	c.sim.After(delay, func() {
		if !c.stopped && c.cfg.Mode != ModeCDNOnly {
			c.engageRLive()
		}
	})
}

// repairChainGaps detects ordering gaps past the chain terminal — frames
// whose data AND chain copies were all lost — and requests them from the
// CDN by inferred dts (§8.1: the CDN supports dts-indexed recovery
// precisely for this). A gap is evidenced by an "anchor" beyond the
// terminal: any frame we have data or a header for but cannot link (its
// chain parked or never sent). Fixed frame spacing identifies the missing
// dts values in between; once they arrive, linkConsecutive reconnects the
// chain and parked chains merge.
func (c *Client) repairChainGaps() {
	term, ok := c.gchain.Terminal()
	if !ok {
		return
	}
	iv := c.intervalMs()
	// Pre-seed gap: after a chain reset (variant switch, fallback) the
	// new chain can seed AHEAD of the playhead, leaving frames between
	// playhead and the chain's first entry that no entry describes.
	// Fetch them from the CDN by dts.
	if first, ok := c.gchain.First(); ok && c.playheadSet && first.Dts > c.playhead {
		n := 0
		for dts := c.playhead; dts < first.Dts && n < 16; dts += iv {
			if a, ok := c.frames[dts]; ok && a.complete {
				continue
			}
			c.fetchDedicated(dts, c.frames[dts])
			c.GapRepairs++
			n++
		}
	}
	// Farthest frame we have evidence for beyond the terminal (pure max
	// over the map: deterministic regardless of iteration order).
	horizon := uint64(0)
	found := false
	for dts, a := range c.frames {
		if dts > term.Dts && (a.complete || a.haveHdr) && dts > horizon {
			horizon = dts
			found = true
		}
	}
	if !found {
		return
	}
	// Fetch incomplete or missing frames from the terminal toward the
	// horizon; each completion lets linkConsecutive extend the chain and
	// parked chains merge. The publishers cannot serve these (their chain
	// copies and/or data are gone), so the CDN's dts-indexed recovery is
	// the correct source.
	const maxRepair = 8
	n := 0
	for dts := term.Dts + iv; dts <= horizon && n < maxRepair; dts += iv {
		if a, ok := c.frames[dts]; ok && a.complete {
			continue
		}
		c.fetchDedicated(dts, c.frames[dts])
		c.GapRepairs++
		n++
	}
}

// pktSuccessRate returns p for the recovery model: observed packet
// retransmission success, with an optimistic prior before evidence exists.
func (c *Client) pktSuccessRate() float64 {
	if c.pktRetxTried < 10 {
		return 0.9
	}
	p := float64(c.pktRetxSucc) / float64(c.pktRetxTried)
	if p > 0.99 {
		p = 0.99
	}
	return p
}

// beRetryRTT estimates one best-effort retry round trip from publisher RTT
// trackers (default 150 ms before measurements exist).
func (c *Client) beRetryRTT() time.Duration {
	var sum float64
	var n int
	for _, st := range c.subs {
		for _, pub := range st.publishers {
			if ew, ok := c.nodeRTT[pub]; ok && ew.Initialized() {
				sum += ew.Value()
				n++
			}
		}
	}
	if n == 0 {
		return 150 * time.Millisecond
	}
	return time.Duration(sum/float64(n)) * time.Millisecond
}

package client

import (
	"time"

	"repro/internal/chain"
	"repro/internal/media"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// ABR: adaptive bitrate over a ladder of variant streams. Variants are
// independent streams end to end (separate stream IDs, separate frame
// chains), matching how production ladders work; a variant switch tears
// down the data plane and rebuilds it on the new stream ID while already
// buffered frames keep playing. ABR interacts with RLive exactly as the
// paper's Fig 9b measures: when dedicated CDN capacity saturates at peak,
// CDN-only clients stall, downgrade, and stay low; RLive clients offload to
// best-effort nodes and hold higher rungs.

// ABRSwitchCounters expose adaptation activity for experiments.
type ABRSwitchCounters struct {
	Up   uint64
	Down uint64
}

// Rung returns the current ladder rung (0 when ABR is disabled).
func (c *Client) Rung() int { return c.rung }

// abrStart initializes the ABR controller; called from Start when
// Variants is configured.
func (c *Client) abrStart() {
	// Locate the starting rung from cfg.Stream's position in the ladder.
	c.rung = len(c.cfg.Variants) - 1
	for i, v := range c.cfg.Variants {
		if v == c.stream {
			c.rung = i
		}
	}
	// Phase-jitter the adaptation clock: synchronized upgrade waves
	// across a large audience would thundering-herd the origin.
	offset := simnet.Time(c.rng.IntN(int(c.cfg.ABRCheckEvery)))
	c.sim.After(offset, func() {
		c.sim.Every(c.cfg.ABRCheckEvery, func() bool {
			if c.stopped {
				return false
			}
			c.abrTick()
			return true
		})
	})
}

// abrTick applies the adaptation policy: downgrade on stalls or a low
// buffer, upgrade one rung after a sustained stall-free window with a
// healthy buffer.
func (c *Client) abrTick() {
	if len(c.cfg.Variants) < 2 {
		return
	}
	now := c.sim.Now()
	if !c.started {
		// Startup ABR: a session that cannot establish its initial
		// buffer (e.g. joining a saturated CDN at the top rung) steps
		// down the ladder instead of waiting forever.
		if now-c.sessionAt > simnet.Time(4*time.Second) &&
			now-c.lastVariantSwitch >= simnet.Time(c.cfg.ABRMinHold) &&
			c.rung > 0 {
			c.switchVariant(c.rung - 1)
			c.ABRDown++
		}
		return
	}
	buf := c.BufferMs()
	stalledRecently := c.stalled || float64(c.QoE.RebufferEvents) > c.stallsAtLastABR
	// The stall window is consumed every tick — including during the
	// hold period after a switch — so the transient stall a variant
	// switch itself causes is not blamed on the new rung.
	c.stallsAtLastABR = float64(c.QoE.RebufferEvents)
	if now-c.lastVariantSwitch < simnet.Time(c.cfg.ABRMinHold) {
		return
	}
	stableFor := now - c.lastStallAt
	if sinceSwitch := now - c.lastVariantSwitch; c.lastVariantSwitch > 0 && sinceSwitch < stableFor {
		stableFor = sinceSwitch
	}
	switch {
	case (stalledRecently || buf < c.cfg.ABRLowWaterMs) && c.rung > 0:
		c.switchVariant(c.rung - 1)
		c.ABRDown++
	case !stalledRecently && buf >= c.cfg.ABRLowWaterMs &&
		stableFor >= simnet.Time(c.cfg.ABRUpAfterStable) &&
		c.rung < len(c.cfg.Variants)-1:
		c.switchVariant(c.rung + 1)
		c.ABRUp++
	}
}

// switchVariant moves the session to another ladder rung: all current
// subscriptions are torn down, chain state is reset (footprints are
// per-variant), incomplete assemblies are discarded, and delivery restarts
// on the new stream — full CDN first for fast recovery, multi-source
// re-engaging after.
func (c *Client) switchVariant(rung int) {
	if rung < 0 || rung >= len(c.cfg.Variants) || c.cfg.Variants[rung] == c.stream {
		return
	}
	c.lastVariantSwitch = c.sim.Now()

	// Tear down the old variant's subscriptions.
	for _, st := range c.subs {
		for _, pub := range st.publishers {
			c.sendTo(pub, &transport.UnsubscribeReq{Key: c.key(st.ss)})
		}
		st.publishers = nil
		if st.switchedToCDN {
			c.sendTo(c.cfg.CDN, &transport.CDNUnsubscribeReq{Stream: c.stream, Substream: st.ss})
			st.switchedToCDN = false
		}
		st.candidates = nil
		st.expected, st.received = 0, 0
	}
	wasFullCDN := c.fullCDN
	if wasFullCDN {
		c.sendTo(c.cfg.CDN, &transport.CDNUnsubscribeReq{Stream: c.stream, FullStream: true})
		c.fullCDN = false
	}

	// Move to the new variant and reset per-variant state.
	c.rung = rung
	c.stream = c.cfg.Variants[rung]
	c.gchain = chain.NewGlobal(0)
	c.gchain.SetTrace(c.chainTr)
	c.ownGen.started = false
	for dts, a := range c.frames {
		if !a.complete {
			delete(c.frames, dts) // sizes/footprints differ per variant
			c.releaseAsm(a)
		}
	}
	c.frameReqAt = make(map[uint64]simnet.Time)

	// Restart delivery: CDN full stream immediately; multi-source
	// re-engages through the normal candidate path.
	c.subscribeFullCDN()
	if c.cfg.Mode != ModeCDNOnly {
		c.rliveActive = true
		c.refreshCandidates()
	}
}

// abrEffectiveStream returns the stream a given variant rung maps to.
func (c *Client) abrEffectiveStream(rung int) (media.StreamID, bool) {
	if rung < 0 || rung >= len(c.cfg.Variants) {
		return 0, false
	}
	return c.cfg.Variants[rung], true
}
